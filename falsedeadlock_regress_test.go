package dgr

import (
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"

	"dgr/internal/check"
	"dgr/internal/graph"
)

// regenReplayLogs regenerates the checked-in replay logs under
// internal/check/testdata (go test -run FalseDeadlock -regen-replay-logs).
var regenReplayLogs = flag.Bool("regen-replay-logs", false,
	"regenerate the internal/check/testdata replay logs")

const (
	falseDeadlockLog = "internal/check/testdata/false_deadlock_replay.jsonl"
	falseDeadlockSrc = "let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 10"
)

// falseDeadlockOpts are shared by the recording and the replaying machine —
// replay requires an identically-built initial graph.
func falseDeadlockOpts() Options {
	return Options{PEs: 2, Seed: 11, MTEvery: 1, GCInterval: 2000, Capacity: 1 << 12}
}

// regenFalseDeadlockLog records a clean deterministic fib run and doctors
// it into the false-deadlock schedule the parallel race produces: one
// mid-run M_T cycle's recorded root snapshot is emptied and that epoch's
// marking executions are dropped, exactly as if the snapshot had missed
// every live task (the pop→publish invisibility window, scaled up from one
// task to all of them). Everything else — the reductions that prove the
// program was live all along, and the next M_T cycle that sees them — stays
// verbatim. Replayed on a single-read collector this yields a spurious
// stable deadlock verdict over the whole R_v set; the two-phase collector
// must retract it one cycle later.
func regenFalseDeadlockLog(t *testing.T) {
	opts := falseDeadlockOpts()
	opts.RecordSchedule = true
	m := New(opts)
	defer m.Close()
	v, err := m.Eval(falseDeadlockSrc)
	if err != nil || v.Int != 55 {
		t.Fatalf("recording run: v=%v err=%v, want 55", v, err)
	}
	events, err := m.ScheduleEvents()
	if err != nil {
		t.Fatal(err)
	}

	// Locate the M_T cycle starts. The i-th one (1-based) ran at T epoch i:
	// every M_T StartCycle is recorded, and epochs advance by one per start.
	var tCycles []int
	for i, e := range events {
		if e.Ev == check.EvCycle && e.Ctx == graph.CtxT && len(e.Roots) > 0 {
			tCycles = append(tCycles, i)
		}
	}
	// The doctored cycle needs nonempty roots to empty, and at least one
	// later M_T cycle to perform the retraction.
	if len(tCycles) < 3 {
		t.Fatalf("recording run produced only %d M_T cycles with roots; need ≥ 3", len(tCycles))
	}
	victim := tCycles[len(tCycles)/2]
	epoch := uint64(0)
	for _, i := range tCycles {
		epoch++
		if i == victim {
			break
		}
	}
	events[victim].Roots = nil
	doctored := events[:0:0]
	dropped := 0
	for _, e := range events {
		if e.Ev == check.EvExec && e.Ctx == graph.CtxT && e.Epoch == epoch {
			dropped++
			continue
		}
		doctored = append(doctored, e)
	}
	if dropped == 0 {
		t.Fatalf("no T-marking executions at epoch %d to drop", epoch)
	}

	f, err := os.Create(falseDeadlockLog)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, e := range doctored {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("regenerated %s: %d events (%d T-marking executions of epoch %d dropped)",
		falseDeadlockLog, len(doctored), dropped, epoch)
}

// TestFalseDeadlockReplayRegression replays the checked-in doctored
// schedule: an M_T snapshot that missed every live task nominates the whole
// reachable set as deadlocked, and the next M_T cycle — which sees the
// tasks again — must retract the verdict rather than let it stand. On the
// pre-two-phase collector this replay ends with a nonempty Deadlocked()
// (the false verdict is terminal); on the fixed collector it ends clean,
// with the retraction visible in the DeadlockRetracted counter.
func TestFalseDeadlockReplayRegression(t *testing.T) {
	if *regenReplayLogs {
		regenFalseDeadlockLog(t)
	}
	f, err := os.Open(falseDeadlockLog)
	if err != nil {
		t.Fatalf("%v (regenerate with -regen-replay-logs)", err)
	}
	events, err := check.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the log really contains the doctored (empty-roots) M_T cycle.
	doctoredCycles := 0
	for _, e := range events {
		if e.Ev == check.EvCycle && e.Ctx == graph.CtxT && len(e.Roots) == 0 {
			doctoredCycles++
		}
	}
	if doctoredCycles != 1 {
		t.Fatalf("log has %d empty-roots M_T cycles, want exactly 1 (stale log? regenerate)", doctoredCycles)
	}

	opts := falseDeadlockOpts()
	opts.Check = true
	opts.CheckEvery = 64
	m := New(opts)
	defer m.Close()
	root, err := m.Compile(falseDeadlockSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ReplaySchedule(root, events); err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if dead := m.Deadlocked(); len(dead) != 0 {
		t.Fatalf("false deadlock verdict survived the replay: %v", dead)
	}
	if got := m.Stats().DeadlockRetracted; got < 1 {
		t.Fatalf("DeadlockRetracted = %d, want ≥ 1 (the doctored snapshot's candidates must be retracted)", got)
	}
	if cerr := m.CheckErr(); cerr != nil {
		t.Fatalf("checker violations during replay: %v\n%s",
			cerr, strings.Join(m.CheckViolations(), "\n"))
	}
	// The replayed graph holds the finished computation.
	v, err := m.EvalNode(root)
	if err != nil || v.Int != 55 {
		t.Fatalf("replayed graph evaluates to %v (err %v), want 55", v, err)
	}
}
