package dgr

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"dgr/internal/workload"
)

// TestParallelStress runs the corpus concurrently on parallel machines —
// PE goroutines, a background collector, and Eval all racing — primarily
// as a race-detector workload.
func TestParallelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	programs := []string{"fac", "sumsquares", "churn"}
	var wg sync.WaitGroup
	for i, name := range programs {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			p := workload.Programs[name]
			m := New(Options{
				PEs:      4,
				Parallel: true,
				MTEvery:  2,
				Timeout:  2 * time.Minute,
				Capacity: 1 << 16,
			})
			defer m.Close()
			v, err := m.Eval(p.Src)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			if v.Int != p.Want {
				t.Errorf("%s = %v, want %d", name, v, p.Want)
			}
		}(i, name)
	}
	wg.Wait()
}

// TestParallelSpeculativeStress exercises the hairiest interleaving:
// speculative reduction, cooperating mutator primitives, and continuous
// background collection, all in parallel mode.
func TestParallelSpeculativeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	m := New(Options{
		PEs:           4,
		Parallel:      true,
		SpeculativeIf: true,
		MTEvery:       2,
		Timeout:       2 * time.Minute,
		Capacity:      1 << 18,
	})
	defer m.Close()
	v, err := m.Eval("let fac n = if n == 0 then 1 else n * fac (n - 1) in fac 9")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 362880 {
		t.Fatalf("fac 9 = %v", v)
	}
}

// TestParallelRepeatedEvals reuses one parallel machine for many programs
// back to back, checking the collector keeps the heap bounded.
func TestParallelRepeatedEvals(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	m := New(Options{PEs: 4, Parallel: true, Capacity: 1 << 16, Timeout: 2 * time.Minute})
	defer m.Close()
	for i := 0; i < 10; i++ {
		src := fmt.Sprintf("let fac n = if n == 0 then 1 else n * fac (n - 1) in fac %d", 5+i%3)
		if _, err := m.Eval(src); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	// The background collector needs a few cycles to catch up with the
	// garbage the evals left behind.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && m.Stats().Reclaimed == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	s := m.Stats()
	if s.Reclaimed == 0 {
		t.Fatal("repeated evals should have reclaimed garbage")
	}
	// Nothing may ever be falsely reported deadlocked: every program
	// completed.
	if s.DeadlockedFound != 0 {
		t.Fatalf("false deadlocks on completed computations: %d", s.DeadlockedFound)
	}
}

// TestParallelFalseDeadlockStress hammers the deadlock detector's historic
// racy window: parallel machines with M_T on every cycle and the collector
// paced as hot as it will go, evaluating live programs to completion over
// and over. Every program terminates, so any ErrDeadlock — or any nonzero
// DeadlockedFound — is a false verdict: the M_T snapshot raced a reduction
// or an in-flight delivery and the two-phase confirmation failed to retract
// it. Scaled down, never skipped, under -short: this is the standing
// regression surface for the false-deadlock race.
func TestParallelFalseDeadlockStress(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 6
	}
	want := map[int]int64{9: 34, 10: 55, 11: 89}
	for i := 0; i < rounds; i++ {
		n := 9 + i%3
		m := New(Options{
			PEs:      4,
			Parallel: true,
			MTEvery:  1,
			Seed:     int64(i),
			Pace:     time.Nanosecond, // continuous collection: maximize snapshot/mutator overlap
			Timeout:  2 * time.Minute,
			Capacity: 1 << 14,
		})
		src := fmt.Sprintf("let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib %d", n)
		v, err := m.Eval(src)
		s := m.Stats()
		m.Close()
		if err != nil {
			t.Fatalf("round %d: %v (DeadlockedFound=%d DeadlockRetracted=%d)",
				i, err, s.DeadlockedFound, s.DeadlockRetracted)
		}
		if v.Int != want[n] {
			t.Fatalf("round %d: fib %d = %v, want %d", i, n, v, want[n])
		}
		if s.DeadlockedFound != 0 {
			t.Fatalf("round %d: confirmed deadlock verdict on a completed run (found=%d retracted=%d)",
				i, s.DeadlockedFound, s.DeadlockRetracted)
		}
	}
}

// TestNoGoroutineLeaks verifies Close tears down PE goroutines and the
// collector.
func TestNoGoroutineLeaks(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		m := New(Options{PEs: 8, Parallel: true})
		if _, err := m.Eval("2 + 2"); err != nil {
			t.Fatal(err)
		}
		m.Close()
	}
	// Allow brief settling.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestFabricAdversarialStress compares a direct-dispatch machine against a
// fabric machine under 5% loss, both driven by the adversarial
// deterministic scheduler (uniformly random pops). The lossy, batching,
// reordering network must be semantically invisible: identical evaluation
// results, and the collector must converge to the same live heap and
// reclaim the same amount of garbage.
func TestFabricAdversarialStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	type outcome struct {
		val       int64
		reclaimed int64
		live      int
	}
	run := func(name string, fabric bool) outcome {
		opts := Options{PEs: 4, Seed: 77, Adversarial: true, Capacity: 1 << 16}
		if fabric {
			opts.Fabric = true
			opts.BatchSize = 8
			opts.FlushEvery = 20 * time.Microsecond
			opts.LinkLatency = 5 * time.Microsecond
			opts.Jitter = 3 * time.Microsecond
			opts.DropRate = 0.05
			opts.ReorderRate = 0.10
		}
		m := New(opts)
		defer m.Close()
		p := workload.Programs[name]
		v, err := m.Eval(p.Src)
		if err != nil {
			t.Fatalf("%s (fabric=%v): %v", name, fabric, err)
		}
		if v.Int != p.Want {
			t.Fatalf("%s (fabric=%v) = %v, want %d", name, fabric, v, p.Want)
		}
		// Collect to fixpoint so both machines see the same final heap.
		for i := 0; i < 50; i++ {
			if rep := m.RunGC(); rep.Completed && rep.Reclaimed == 0 {
				break
			}
		}
		s := m.Stats()
		if fabric {
			if s.FabricSent == 0 {
				t.Fatalf("%s: adversarial fabric run produced no traffic", name)
			}
			if s.FabricSent != s.FabricDelivered+s.FabricExpunged {
				t.Fatalf("%s: fabric lost tasks: sent=%d delivered=%d expunged=%d",
					name, s.FabricSent, s.FabricDelivered, s.FabricExpunged)
			}
		}
		return outcome{
			val:       v.Int,
			reclaimed: s.Reclaimed,
			live:      m.TotalVertices() - m.FreeVertices(),
		}
	}
	// These three spread allocation across partitions, so every run has
	// genuine cross-PE traffic (churn/fac/sumsquares stay on one PE).
	for _, name := range []string{"fib", "tak", "parfib"} {
		direct := run(name, false)
		lossy := run(name, true)
		if direct.val != lossy.val {
			t.Fatalf("%s: direct=%d fabric=%d", name, direct.val, lossy.val)
		}
		if direct.reclaimed == 0 || lossy.reclaimed == 0 {
			t.Fatalf("%s: reclamation missing (direct=%d fabric=%d)",
				name, direct.reclaimed, lossy.reclaimed)
		}
		if direct.live != lossy.live || direct.reclaimed != lossy.reclaimed {
			t.Fatalf("%s: GC diverged: direct live=%d reclaimed=%d, fabric live=%d reclaimed=%d",
				name, direct.live, direct.reclaimed, lossy.live, lossy.reclaimed)
		}
	}
}
